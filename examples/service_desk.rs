//! The hackathon-winning "Service Desk Ticket Analysis" dashboard
//! (figure 33), featuring the custom task §5.2.2 observation 2 describes:
//! "one team wrote a task to predict resolution dates of service tickets
//! based on keywords present in the ticket. The custom task looks no
//! different from a platform provided task."
//!
//! Also demonstrates the §6/OBS-4 data-cleaning story: the pipeline is run
//! against clean data, then against a corrupted variant, showing the
//! data-quality report and the extra cleaning stage it forces.
//!
//! Run with: `cargo run --example service_desk`

use shareinsights::core::Platform;
use shareinsights::datagen::{dirty, tickets};
use shareinsights::hackathon::simulate::register_custom_tasks;
use shareinsights::server::{Request, Server};
use shareinsights::tabular::io::csv::write_csv;

const FLOW: &str = r#"
D:
  tickets: [ticket_id, opened, closed, category, priority, description, resolution_days]
D.tickets:
  source: 'tickets.csv'
  format: csv

T:
  # The custom extension task: indistinguishable from built-ins.
  predictor:
    type: predict_resolution
  by_category:
    type: groupby
    groupby: [category]
    aggregates:
    - operator: avg
      apply_on: resolution_days
      out_field: actual_avg
    - operator: avg
      apply_on: predicted_days
      out_field: predicted_avg
    - operator: count
      apply_on: ticket_id
      out_field: tickets
  slowest:
    type: topn
    groupby: [category]
    orderby_column: [resolution_days DESC]
    limit: 2

F:
  +D.category_accuracy: D.tickets | T.predictor | T.by_category
  +D.slowest_tickets: D.tickets | T.slowest

W:
  accuracy_bar:
    type: Bar
    source: D.category_accuracy
    x: category
    y: predicted_avg
  slow_grid:
    type: DataGrid
    source: D.slowest_tickets

L:
  description: Service Desk Ticket Analysis
  rows:
  - [span6: W.accuracy_bar, span6: W.slow_grid]
"#;

fn main() {
    let platform = Platform::new();
    register_custom_tasks(&platform); // the team's predict_resolution task

    // --- clean run ----------------------------------------------------------
    let clean = tickets::generate(&tickets::TicketsConfig::default());
    platform.upload_data("service_desk", "tickets.csv", write_csv(&clean, ','));
    platform
        .save_flow("service_desk", FLOW)
        .expect("valid flow");
    let run = platform.run_dashboard("service_desk").expect("runs");
    println!("clean data: {} tickets", run.result.stats.source_rows);
    println!("{}", run.result.table("category_accuracy").unwrap());

    // The predictor's keyword signal: predicted_avg tracks actual_avg.
    let acc = run.result.table("category_accuracy").unwrap();
    for i in 0..acc.num_rows() {
        let cat = acc.value(i, "category").unwrap().to_string();
        let actual = acc
            .value(i, "actual_avg")
            .unwrap()
            .as_float()
            .unwrap_or(0.0);
        let predicted = acc
            .value(i, "predicted_avg")
            .unwrap()
            .as_float()
            .unwrap_or(0.0);
        println!("  {cat:<10} actual {actual:>5.2}d predicted {predicted:>5.2}d");
    }

    // --- §5.2.2 obs. 4: real (dirty) data forces more cleaning --------------
    let dirty_table = dirty::corrupt(&clean, &dirty::DirtyConfig::default());
    let report = dirty::assess(&dirty_table);
    println!("\ncompetition data quality: {report:?}");
    platform.upload_data("service_desk", "tickets.csv", write_csv(&dirty_table, ','));
    let dirty_run = platform.run_dashboard("service_desk").expect("still runs");
    println!(
        "dirty data: {} tickets ({} duplicates inflate the counts)",
        dirty_run.result.stats.source_rows, report.duplicate_rows
    );

    // The cleaning stage a real team would add: distinct + null filter.
    let cleaned_flow = FLOW.replace(
        "F:\n  +D.category_accuracy: D.tickets | T.predictor | T.by_category",
        "  dedupe:\n    type: distinct\n    columns: [ticket_id]\n  drop_null_desc:\n    type: filter_by\n    filter_expression: description != null\nF:\n  +D.category_accuracy: D.tickets | T.dedupe | T.drop_null_desc | T.predictor | T.by_category",
    );
    platform
        .save_flow("service_desk", &cleaned_flow)
        .expect("valid");
    let cleaned_run = platform.run_dashboard("service_desk").expect("runs");
    let before = dirty_run.result.table("category_accuracy").unwrap();
    let after = cleaned_run.result.table("category_accuracy").unwrap();
    println!(
        "pipeline grew from 2 to 4 tasks; grouped rows {} -> {}",
        before.num_rows(),
        after.num_rows()
    );

    // Verify the cleaned counts no longer include duplicates.
    let total_after: i64 = (0..after.num_rows())
        .filter_map(|i| after.value(i, "tickets").unwrap().as_int())
        .sum();
    println!(
        "tickets counted after cleaning: {total_after} (raw dirty rows: {})",
        dirty_table.num_rows()
    );

    // --- ad-hoc inspection over the REST surface ---------------------------
    let server = Server::new(platform);
    let r = server.handle(&Request::get(
        "/service_desk/ds/category_accuracy/sort/predicted_avg/desc/limit/2",
    ));
    println!("\nslowest predicted categories -> {}", r.body);
}
