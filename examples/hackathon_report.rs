//! Reproduce the paper's §5 evaluation: simulate Race2Insights against the
//! real platform and print the three figures' series.
//!
//! Run with: `cargo run --release --example hackathon_report`
//! (optionally pass a team count, default 52 — the paper's roster).

use shareinsights::hackathon::{figures, run_hackathon, HackathonConfig};

fn main() {
    let teams: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(52);
    println!("simulating Race2Insights with {teams} teams (seed 2015)…\n");
    let outcome = run_hackathon(&HackathonConfig {
        teams,
        ..Default::default()
    });

    let figs = figures::extract(&outcome);
    println!("{}", figs.fig31_text());
    println!("{}", figs.fig32_text());
    println!("{}", figs.fig35_text());

    println!("finalists: {:?}", outcome.finalists());
    println!("winners:   {:?}", outcome.winners());

    // Observation 7's error telemetry: what failed runs looked like.
    let errors = outcome.platform.log().errors();
    println!(
        "\n{} failed events; first three error messages:",
        errors.len()
    );
    for (dash, msg) in errors.iter().take(3) {
        let short: String = msg.chars().take(100).collect();
        println!("  [{dash}] {short}");
    }

    // Practice/competition correlation, quantified.
    let xs: Vec<f64> = outcome
        .teams
        .iter()
        .map(|t| t.practice_runs as f64)
        .collect();
    let ys: Vec<f64> = outcome.teams.iter().map(|t| t.score).collect();
    println!(
        "\ncorrelation(practice runs, judged score) = {:.2}",
        pearson(&xs, &ys)
    );
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let (mx, my) = (xs.iter().sum::<f64>() / n, ys.iter().sum::<f64>() / n);
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum::<f64>().sqrt();
    let sy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum::<f64>().sqrt();
    cov / (sx * sy)
}
