//! The paper's §6 "Future Directions", implemented and demonstrated:
//!
//! 1. **Meta-dashboards** — auto-constructed per-column statistics and
//!    data-quality warnings for every table a pipeline materialises,
//!    served as a real dashboard;
//! 2. **Dataset discovery** — published shared objects ranked by join
//!    compatibility with your data, with ready-to-paste task snippets;
//! 3. **Error pin-pointing** — engine errors mapped back to flow-file
//!    lines with "did you mean …" corrections, without leaking engine
//!    internals (§5.2.2 observation 7's complaint, fixed).
//!
//! Run with: `cargo run --example future_directions`

use shareinsights::core::Platform;
use shareinsights::datagen::ipl;
use shareinsights::tabular::io::csv::write_csv;

fn main() {
    let platform = Platform::new();

    // A pipeline with some dirt in the data (missing locations).
    let corpus = ipl::generate(&ipl::IplConfig {
        tweets: 1_000,
        ..Default::default()
    });
    platform.upload_data("ipl", "tweets.json", corpus.tweets_ndjson.clone());
    platform.upload_data("ipl", "players.txt", corpus.players_dict.clone());
    platform
        .save_flow(
            "ipl",
            r#"
D:
  ipl_tweets: [postedTime => created_at, body => text, location => user.location]
D.ipl_tweets:
  source: 'tweets.json'
  format: json
T:
  pipeline:
    parallel: [T.norm_date, T.extract_players]
  norm_date:
    type: map
    operator: date
    transform: postedTime
    input_format: 'E MMM dd HH:mm:ss Z yyyy'
    output_format: yyyy-MM-dd
    output: date
  extract_players:
    type: map
    operator: extract
    transform: body
    dict: players.txt
    output: player
  count:
    type: groupby
    groupby: [date, player]
F:
  +D.players_tweets: D.ipl_tweets | T.pipeline | T.count
  D.players_tweets:
    publish: players_tweets
"#,
        )
        .expect("valid flow");

    // --- 1. the meta-dashboard ----------------------------------------------
    let (meta, meta_dash) = platform.open_meta_dashboard("ipl").expect("meta builds");
    println!("=== §6.1 auto-constructed meta-dashboard ===");
    println!("{}", meta.profile.pretty(12));
    println!("data-quality warnings:");
    for w in &meta.warnings {
        println!("  - {w}");
    }
    println!("\nthe meta-dashboard is itself interactive:");
    meta_dash
        .select("objects", "text", vec!["ipl_tweets".into()])
        .unwrap();
    println!("{}", meta_dash.render_widget("null_bar", 5).unwrap());

    // --- 2. dataset discovery -----------------------------------------------
    // Another team published reference data; discovery finds it joinable.
    platform
        .publish_registry()
        .publish(
            "team_players",
            "reference_data",
            "team_players",
            corpus.team_players.schema().clone(),
            Some(corpus.team_players.clone()),
        )
        .unwrap();
    platform
        .publish_registry()
        .publish(
            "lat_long",
            "reference_data",
            "lat_long",
            corpus.lat_long.schema().clone(),
            Some(corpus.lat_long.clone()),
        )
        .unwrap();
    // Write some retail data nobody can join with, to show filtering.
    platform
        .publish_registry()
        .publish(
            "retail_sales",
            "retail_team",
            "sales",
            shareinsights::datagen::retail::generate(&Default::default())
                .sales
                .schema()
                .clone(),
            None,
        )
        .unwrap();

    println!("=== §6.2 dataset discovery for D.players_tweets ===");
    let suggestions = platform
        .suggest_enrichments("ipl", "players_tweets")
        .expect("object exists");
    for s in &suggestions {
        println!(
            "  {} (from {}): join on [{}]{} adds [{}]",
            s.publish_name,
            s.producer,
            s.join_keys.join(", "),
            if s.key_is_unique { ", unique key" } else { "" },
            s.new_columns.join(", ")
        );
    }
    if let Some(best) = suggestions.first() {
        println!(
            "\nready-to-paste task snippet:\n{}",
            best.task_snippet("players_tweets")
        );
    }

    // --- 3. error pin-pointing ----------------------------------------------
    println!("=== §6.3 error pin-pointing ===");
    platform
        .save_flow(
            "broken",
            "D:\n  data: [project, year, noOfBugs]\nT:\n  f:\n    type: filter_by\n    filter_expression: projct < 3\nF:\n  +D.out: D.data | T.f\n",
        )
        .unwrap();
    let err = platform.compile_dashboard("broken").unwrap_err();
    println!("raw error: {err}");
    let diagnosis = platform.diagnose("broken", &err);
    println!("diagnosis: {} (line {})", diagnosis.summary, diagnosis.line);
    for s in &diagnosis.suggestions {
        println!("  hint: {s}");
    }

    // The write_csv import keeps the example self-contained for users who
    // want to dump the profile:
    let _ = write_csv(&meta.profile, ',');
}
