//! Quickstart: the smallest end-to-end ShareInsights pipeline.
//!
//! One flow file takes a CSV through a group-by into an endpoint, a widget
//! renders it, and the REST surface browses it — ingestion to insight in a
//! single declarative text (the paper's §1 promise).
//!
//! Run with: `cargo run --example quickstart`

use shareinsights::core::Platform;
use shareinsights::server::{Request, Server};

const FLOW: &str = r#"
# --- data section: a CSV in the dashboard's data folder -------------------
D:
  sales: [region, brand, revenue]
D.sales:
  source: 'sales.csv'
  format: csv

# --- task section: a reusable group-by ------------------------------------
T:
  revenue_by_region:
    type: groupby
    groupby: [region]
    aggregates:
    - operator: sum
      apply_on: revenue
      out_field: total_revenue

# --- flow section: pipe the source through the task into an endpoint ------
F:
  +D.region_totals: D.sales | T.revenue_by_region

# --- widget + layout: a bar chart over the endpoint ------------------------
W:
  region_bar:
    type: Bar
    source: D.region_totals
    x: region
    y: total_revenue
L:
  description: Quickstart
  rows:
  - [span12: W.region_bar]
"#;

fn main() {
    let platform = Platform::new();

    // Upload data (the §4.3.2 SFTP interface).
    platform.upload_data(
        "quickstart",
        "sales.csv",
        "region,brand,revenue\n\
         north,acme,120.5\n\
         south,acme,80.0\n\
         north,zest,44.25\n\
         east,zest,95.0\n\
         south,brio,61.75\n",
    );

    // Save the flow file (parse + validate + commit).
    let warnings = platform
        .save_flow("quickstart", FLOW)
        .expect("flow file is valid");
    println!("saved flow file ({} validation warnings)", warnings.len());

    // Run the batch pipeline.
    let run = platform.run_dashboard("quickstart").expect("run succeeds");
    println!(
        "ran pipeline: {} source rows -> endpoints {:?} in {}us",
        run.result.stats.source_rows, run.result.endpoints, run.result.stats.total_micros
    );
    println!(
        "\nendpoint data:\n{}",
        run.result.table("region_totals").unwrap()
    );

    // Open the dashboard and render the widget tree.
    let dash = platform.open_dashboard("quickstart").expect("opens");
    println!("rendered dashboard:\n{}", dash.render(10).unwrap());

    // Browse the same data over the REST surface (figures 27/28/30).
    let server = Server::new(platform);
    let r = server.handle(&Request::get("/quickstart/ds"));
    println!("GET /quickstart/ds -> {}", r.body);
    let r = server.handle(&Request::get("/quickstart/ds/region_totals"));
    println!("GET /quickstart/ds/region_totals -> {}", r.body);
    let r = server.handle(&Request::get(
        "/quickstart/ds/region_totals/sort/total_revenue/desc/limit/1",
    ));
    println!("top region -> {}", r.body);
}
